package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeSmoke drives the full command in-process: fixture source, a small
// fleet, feed and stats over real HTTP, then shutdown via context cancel
// (the in-process equivalent of SIGINT).
func TestServeSmoke(t *testing.T) {
	ready := make(chan string, 1)
	onReady = func(baseURL string) { ready <- baseURL }
	defer func() { onReady = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{
			"-listen", "127.0.0.1:0",
			"-nodes", "10",
			"-cycles", "-1",
			"-cycle-length", "5ms",
			"-poll", "20ms",
			"-source", "file:../../internal/source/testdata/feed.xml",
		}, &stdout, &stderr)
	}()

	var base string
	select {
	case base = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	getJSON := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode
	}

	var health map[string]string
	if code := getJSON("/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}

	// The gateway must ingest the fixture and BEEP must deliver: poll the
	// stats and a feed until both show life.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var stats struct {
			Catalog *int  `json:"catalog"`
			Online  int   `json:"online"`
			Cycle   int64 `json:"cycle"`
		}
		getJSON("/v1/stats", &stats)
		var feed struct {
			Entries []struct {
				Item struct {
					ID    string `json:"id"`
					Title string `json:"title"`
				} `json:"item"`
			} `json:"entries"`
		}
		getJSON("/v1/nodes/3/feed", &feed)
		if stats.Catalog != nil && *stats.Catalog == 6 && stats.Online == 10 && len(feed.Entries) > 0 {
			// Items resolve through the catalog route.
			var item map[string]any
			if code := getJSON("/v1/items/"+feed.Entries[0].Item.ID, &item); code != http.StatusOK {
				t.Fatalf("item lookup: %d", code)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never served a feed: stats=%+v entries=%d", stats, len(feed.Entries))
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("command did not shut down on cancel")
	}
	if !strings.Contains(stdout.String(), "ingested 6 items") {
		t.Fatalf("summary missing ingestion count: %s", stdout.String())
	}
}

func TestServeFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-source", "bogus:x"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad source spec: exit %d", code)
	}
	if code := run(context.Background(), []string{"-gateway-node", "50", "-nodes", "10"}, &stdout, &stderr); code != 2 {
		t.Fatalf("gateway node out of range: exit %d", code)
	}
}
