package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "table1,table2", "-scale", "0.05"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "Table I") || !strings.Contains(got, "Table II") {
		t.Fatalf("expected Table I and II in output:\n%s", got)
	}
}

func TestRunSingleSimExperiment(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "fig6", "-scale", "0.05", "-engine-workers", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "fig6") {
		t.Fatalf("expected fig6 marker in output:\n%s", out.String())
	}
}

func TestRunLiveTransportScenario(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "live", "-transport", "channel", "-scale", "0.1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"Live transport run: channel", "wire bytes", "kbps"} {
		if !strings.Contains(got, want) {
			t.Fatalf("expected %q in output:\n%s", want, got)
		}
	}
}

func TestRunSkipLiveSkipsLiveScenario(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "live", "-skip-live"}, &out, &errOut); code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "skipped (-skip-live)") {
		t.Fatalf("expected skip notice:\n%s", out.String())
	}
	if strings.Contains(out.String(), "wire bytes") {
		t.Fatal("-skip-live must not run the live fleet")
	}
}

func TestRunRejectsUnknownTransport(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "live", "-transport", "smoke-signal"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown -transport") {
		t.Fatalf("stderr=%q", errOut.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
	if !strings.Contains(errOut.String(), "no experiment matched") {
		t.Fatalf("stderr=%q", errOut.String())
	}
}
