package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "table1,table2", "-scale", "0.05"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "Table I") || !strings.Contains(got, "Table II") {
		t.Fatalf("expected Table I and II in output:\n%s", got)
	}
}

func TestRunSingleSimExperiment(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "fig6", "-scale", "0.05", "-engine-workers", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "fig6") {
		t.Fatalf("expected fig6 marker in output:\n%s", out.String())
	}
}

func TestRunLiveTransportScenario(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "live", "-transport", "channel", "-scale", "0.1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"Live transport run: channel", "wire bytes", "kbps"} {
		if !strings.Contains(got, want) {
			t.Fatalf("expected %q in output:\n%s", want, got)
		}
	}
}

func TestRunLiveChurnScenario(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "live", "-transport", "channel", "-scale", "0.1",
		"-live-churn", "0.25", "-live-flash-crowd", "6"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"Live transport run: channel", "churn:", "joiner", "ghost-fraction(end)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("expected %q in output:\n%s", want, got)
		}
	}
}

func TestRunSkipLiveSkipsLiveScenario(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "live", "-skip-live"}, &out, &errOut); code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "skipped (-skip-live)") {
		t.Fatalf("expected skip notice:\n%s", out.String())
	}
	if strings.Contains(out.String(), "wire bytes") {
		t.Fatal("-skip-live must not run the live fleet")
	}
}

func TestRunRejectsUnknownTransport(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "live", "-transport", "smoke-signal"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown -transport") {
		t.Fatalf("stderr=%q", errOut.String())
	}
}

func TestRunHotpathEmitsTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("hotpath microbenchmarks in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	var stdout, stderr strings.Builder
	code := run([]string{"-run", "hotpath", "-cycle-peers", "60",
		"-bench-out", out, "-bench-label", "test"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Hot-path microbenchmarks") {
		t.Fatalf("expected scenario table:\n%s", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj struct {
		Schema string `json:"schema"`
		Runs   []struct {
			Label     string `json:"label"`
			Scenarios []struct {
				Name        string  `json:"name"`
				NsPerOp     float64 `json:"ns_per_op"`
				AllocsPerOp int64   `json:"allocs_per_op"`
			} `json:"scenarios"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("trajectory is not valid JSON: %v", err)
	}
	if traj.Schema != "whatsup-bench/hotpath/v1" || len(traj.Runs) != 1 {
		t.Fatalf("unexpected trajectory shape: %+v", traj)
	}
	run0 := traj.Runs[0]
	if run0.Label != "test" || len(run0.Scenarios) < 5 {
		t.Fatalf("trajectory entry incomplete: %+v", run0)
	}
	for _, s := range run0.Scenarios {
		if s.NsPerOp <= 0 {
			t.Fatalf("scenario %s has no timing", s.Name)
		}
	}
	// A second run must append, not overwrite.
	if code := run([]string{"-run", "hotpath", "-cycle-peers", "60", "-bench-out", out},
		&stdout, &stderr); code != 0 {
		t.Fatalf("second run exit=%d stderr=%q", code, stderr.String())
	}
	data, _ = os.ReadFile(out)
	if err := json.Unmarshal(data, &traj); err != nil || len(traj.Runs) != 2 {
		t.Fatalf("trajectory must append runs: err=%v runs=%d", err, len(traj.Runs))
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit=%d want 2", code)
	}
	if !strings.Contains(errOut.String(), "no experiment matched") {
		t.Fatalf("stderr=%q", errOut.String())
	}
}

func TestRunChurnEmitsTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_churn.json")
	var stdout, stderr strings.Builder
	code := run([]string{"-run", "churn", "-cycle-peers", "200",
		"-churn-out", out, "-bench-label", "test"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr.String())
	}
	for _, want := range []string{"Churn bench", "churn (", "ghost-fraction(end)"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("expected %q in output:\n%s", want, stdout.String())
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj struct {
		Schema string `json:"schema"`
		Runs   []struct {
			Label        string  `json:"label"`
			Peers        int     `json:"peers"`
			Events       int     `json:"events"`
			WallMs       float64 `json:"wall_ms"`
			GhostEndFrac float64 `json:"ghost_end_fraction"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("trajectory is not valid JSON: %v", err)
	}
	if traj.Schema != "whatsup-bench/churn/v1" || len(traj.Runs) != 1 {
		t.Fatalf("unexpected trajectory shape: %+v", traj)
	}
	r0 := traj.Runs[0]
	if r0.Label != "test" || r0.Peers != 200 || r0.Events == 0 || r0.WallMs <= 0 {
		t.Fatalf("trajectory entry incomplete: %+v", r0)
	}
	if r0.GhostEndFrac != 0 {
		t.Fatalf("views must heal by the end of the bench run, ghost fraction %v", r0.GhostEndFrac)
	}
	// A second run must append, not overwrite.
	if code := run([]string{"-run", "churn", "-cycle-peers", "200", "-churn-out", out},
		&stdout, &stderr); code != 0 {
		t.Fatalf("second run exit=%d stderr=%q", code, stderr.String())
	}
	data, _ = os.ReadFile(out)
	if err := json.Unmarshal(data, &traj); err != nil || len(traj.Runs) != 2 {
		t.Fatalf("trajectory must append runs: err=%v runs=%d", err, len(traj.Runs))
	}
}

func TestTrajectorySchemaMismatchRefused(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	if err := os.WriteFile(out, []byte(`{"schema":"whatsup-bench/hotpath/v1","runs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	// Pointing the churn scenario at the hotpath trajectory must fail
	// instead of silently rewriting the recorded history.
	if code := run([]string{"-run", "churn", "-cycle-peers", "120", "-churn-out", out},
		&stdout, &stderr); code != 2 {
		t.Fatalf("exit=%d want 2 (stderr=%q)", code, stderr.String())
	}
	if !strings.Contains(stdout.String()+stderr.String(), "refusing to mix histories") {
		t.Fatalf("expected schema refusal, stderr=%q", stderr.String())
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), `"runs": []`) && !strings.Contains(string(data), `"runs":[]`) {
		t.Fatalf("existing trajectory must be left untouched, got: %s", data)
	}
}
