// Command whatsup-bench regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints rows mirroring the paper's; use
// -run to select experiments and -scale to trade fidelity for speed
// (1.0 = the workload sizes of Table I).
//
// Usage:
//
//	whatsup-bench -run all -scale 0.5
//	whatsup-bench -run table3,fig4 -scale 1 -seed 7
//	whatsup-bench -run fig3 -scale 1 -workers 2 -engine-workers 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command with explicit arguments and streams so tests can
// drive the full main path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("whatsup-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList       = fs.String("run", "all", "comma-separated experiments: table1,table2,table3,table4,table5,table6,fig3,fig4,fig5,fig6,fig7,fig8,fig9,fig10,fig11,ablations,live or 'all'; plus hotpath, churn and adversarial (machine benchmarks + BENCH trajectories, never part of 'all')")
		scale         = fs.Float64("scale", 0.5, "dataset scale (1.0 = paper sizes)")
		seed          = fs.Int64("seed", 1, "experiment seed")
		workers       = fs.Int("workers", 0, "parallel sweep points (0 = NumCPU)")
		engineWorkers = fs.Int("engine-workers", 0, "per-simulation engine worker pool (0 = serial; sweep points already run in parallel)")
		engineShards  = fs.Int("shards", 0, "engine membership slabs with codec-routed inter-shard gossip for the 'hotpath', 'churn' and 'adversarial' scenarios (0 = scenario default); results are identical for any value")
		flashPeers    = fs.Int("flash-crowd-peers", 0, "enable the 'hotpath' large-scale flash-crowd scenario at this total population (e.g. 1000000; needs ~10 GB RAM per 1M peers, so it is off by default)")
		cpuProfile    = fs.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile    = fs.String("memprofile", "", "write an allocation profile to this file at exit")
		skipLive      = fs.Bool("skip-live", false, "skip the live (ModelNet/PlanetLab) runs in fig8 and the 'live' scenario")
		transport     = fs.String("transport", "channel", "network for the 'live' scenario: channel (in-memory emulation) or tcp (loopback sockets)")
		batchWindow   = fs.Duration("batch-window", 0, "TCP write-coalescing window for the 'live' scenario (0 = opportunistic batching)")
		liveChurn     = fs.Float64("live-churn", 0, "population fraction hit by churn in the 'live' scenario (crash+rejoin and graceful leaves; 0 = static fleet)")
		liveFlash     = fs.Int("live-flash-crowd", 0, "flash-crowd joiners arriving a third into the 'live' scenario")
		benchOut      = fs.String("bench-out", "BENCH_hotpath.json", "trajectory file the 'hotpath' scenario appends its measurements to")
		benchLabel    = fs.String("bench-label", "", "optional label recorded with the 'hotpath' and 'churn' trajectory entries")
		cyclePeers    = fs.Int("cycle-peers", 5000, "population of the 'hotpath' full-cycle and 'churn' scenarios")
		churnOut      = fs.String("churn-out", "BENCH_churn.json", "trajectory file the 'churn' scenario appends its measurements to")
		churnRate     = fs.Float64("churn-rate", 0.20, "population fraction churning in the 'churn' scenario")
		churnDepart   = fs.Bool("churn-departures", true, "enable graceful-departure notices in the 'churn' and 'live' scenarios")
		churnRefill   = fs.Float64("churn-refill", 0.5, "anti-entropy view-refill watermark for the 'churn' and 'live' scenarios (0 = off)")
		advOut        = fs.String("adversarial-out", "BENCH_adversarial.json", "trajectory file the 'adversarial' scenario appends its measurements to")
		advPeers      = fs.Int("adversarial-peers", 600, "population of the 'adversarial' scenario")
		advCycles     = fs.Int("adversarial-cycles", 40, "cycles of the 'adversarial' scenario")
		advSpam       = fs.Float64("adversarial-spam", 0.10, "population fraction acting as spam publishers in the 'adversarial' scenario")
		advPoison     = fs.Bool("adversarial-poison", true, "attackers also advertise poisoned profiles (sybil mode) in the 'adversarial' scenario")
		advPartitionK = fs.Int("adversarial-partition-k", 2, "k-way network partition opening mid-run in the 'adversarial' scenario (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *transport != "channel" && *transport != "tcp" {
		fmt.Fprintf(stderr, "unknown -transport=%s (want channel or tcp)\n", *transport)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "-cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "-cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "-memprofile: %v\n", err)
			}
		}()
	}

	o := experiments.Options{Seed: *seed, Scale: *scale, Workers: *workers, EngineWorkers: *engineWorkers}
	selected := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	all := selected["all"]
	want := func(name string) bool { return all || selected[name] }

	fmt.Fprintf(stdout, "whatsup-bench scale=%.2f seed=%d\n\n", *scale, *seed)
	ran := 0
	runExp := func(name string, fn func() fmt.Stringer) {
		if !want(name) {
			return
		}
		ran++
		start := time.Now()
		result := fn()
		fmt.Fprintf(stdout, "%s\n  [%s in %v]\n\n", result, name, time.Since(start).Round(time.Millisecond))
	}

	runExp("table1", func() fmt.Stringer { return experiments.Table1(o) })
	runExp("table2", func() fmt.Stringer { return table2{} })
	runExp("table3", func() fmt.Stringer { return experiments.Table3(o) })
	runExp("table4", func() fmt.Stringer { return experiments.Table4(o) })
	runExp("table5", func() fmt.Stringer { return experiments.Table5(o) })
	runExp("table6", func() fmt.Stringer { return experiments.Table6(o) })
	runExp("fig3", func() fmt.Stringer {
		var b strings.Builder
		for _, name := range []string{"synthetic", "digg", "survey"} {
			b.WriteString(experiments.Fig3(name, o).String())
		}
		return stringer(b.String())
	})
	runExp("fig4", func() fmt.Stringer { return experiments.Fig4(o) })
	runExp("fig5", func() fmt.Stringer { return experiments.Fig5(o) })
	runExp("fig6", func() fmt.Stringer { return experiments.Fig6(o) })
	runExp("fig7", func() fmt.Stringer { return experiments.Fig7(o, experiments.Fig7Config{}) })
	runExp("fig8", func() fmt.Stringer {
		return experiments.Fig8(o, experiments.Fig8Config{SkipLive: *skipLive})
	})
	runExp("fig9", func() fmt.Stringer { return experiments.Fig9(o) })
	runExp("fig10", func() fmt.Stringer { return experiments.Fig10(o) })
	runExp("fig11", func() fmt.Stringer { return experiments.Fig11(o) })
	var liveErr error
	runExp("live", func() fmt.Stringer {
		if *skipLive {
			return stringer("Live transport run: skipped (-skip-live)")
		}
		r, err := experiments.LiveRun(o, experiments.LiveRunConfig{
			ChurnOptions: experiments.ChurnOptions{
				ChurnRate: *liveChurn, FlashCrowd: *liveFlash,
				DepartureNotices: *churnDepart, RefillWatermark: *churnRefill,
			},
			Transport: *transport, BatchWindow: *batchWindow,
		})
		if err != nil {
			liveErr = err
			return stringer(err.Error())
		}
		return r
	})
	runExp("ablations", func() fmt.Stringer {
		var b strings.Builder
		b.WriteString(experiments.AblationWUPViewSize(o).String())
		b.WriteString(experiments.AblationProfileWindow(o).String())
		b.WriteString(experiments.AblationRPSViewSize(o).String())
		return stringer(b.String())
	})
	// The hotpath scenario runs only when explicitly selected: it is a
	// machine microbenchmark with a file side effect (the trajectory), not
	// one of the paper's exhibits that 'all' reproduces.
	var hotpathErr error
	runHotpath := func() fmt.Stringer {
		r := experiments.HotPath(experiments.HotPathConfig{
			CyclePeers:      *cyclePeers,
			EngineWorkers:   *engineWorkers,
			EngineShards:    *engineShards,
			FlashCrowdPeers: *flashPeers,
		})
		r.Label = *benchLabel
		if err := appendTrajectoryEntry(*benchOut, "whatsup-bench/hotpath/v1", r); err != nil {
			hotpathErr = err
			return stringer(r.String() + "\n  [trajectory write failed: " + err.Error() + "]")
		}
		return stringer(r.String() + "\n  [appended to " + *benchOut + "]")
	}
	if selected["hotpath"] {
		runExp("hotpath", runHotpath)
	}
	// The churn scenario likewise runs only when explicitly selected: a 5k-peer
	// dynamic-membership run (flash crowd + crash/rejoin/leave trace with view
	// eviction) measured end to end and appended to its own trajectory.
	var churnErr error
	if selected["churn"] {
		runExp("churn", func() fmt.Stringer {
			r := experiments.ChurnBench(experiments.ChurnBenchConfig{
				ChurnOptions: experiments.ChurnOptions{
					ChurnRate:        *churnRate,
					DepartureNotices: *churnDepart,
					RefillWatermark:  *churnRefill,
				},
				Peers:         *cyclePeers,
				EngineWorkers: *engineWorkers,
				EngineShards:  *engineShards,
			})
			r.Label = *benchLabel
			if err := appendTrajectoryEntry(*churnOut, "whatsup-bench/churn/v1", r); err != nil {
				churnErr = err
				return stringer(r.String() + "\n  [trajectory write failed: " + err.Error() + "]")
			}
			return stringer(r.String() + "\n  [appended to " + *churnOut + "]")
		})
	}

	// The adversarial scenario runs only when explicitly selected: the
	// four-cell WhatsUp-vs-Gossip resilience comparison (clean and attacked
	// runs of each) under a hostile cohort and an optional mid-run partition,
	// appended to its own trajectory.
	var adversarialErr error
	if selected["adversarial"] {
		runExp("adversarial", func() fmt.Stringer {
			r := experiments.AdversarialRun(experiments.AdversarialConfig{
				Peers:         *advPeers,
				Cycles:        *advCycles,
				SpamFraction:  *advSpam,
				Poison:        *advPoison,
				PartitionK:    *advPartitionK,
				EngineWorkers: *engineWorkers,
				EngineShards:  *engineShards,
			})
			r.Label = *benchLabel
			if err := appendTrajectoryEntry(*advOut, "whatsup-bench/adversarial/v1", r); err != nil {
				adversarialErr = err
				return stringer(r.String() + "\n  [trajectory write failed: " + err.Error() + "]")
			}
			return stringer(r.String() + "\n  [appended to " + *advOut + "]")
		})
	}

	if ran == 0 {
		fmt.Fprintf(stderr, "no experiment matched -run=%s\n", *runList)
		return 2
	}
	if liveErr != nil {
		fmt.Fprintf(stderr, "live scenario failed: %v\n", liveErr)
		return 2
	}
	if hotpathErr != nil {
		fmt.Fprintf(stderr, "hotpath scenario failed: %v\n", hotpathErr)
		return 2
	}
	if churnErr != nil {
		fmt.Fprintf(stderr, "churn scenario failed: %v\n", churnErr)
		return 2
	}
	if adversarialErr != nil {
		fmt.Fprintf(stderr, "adversarial scenario failed: %v\n", adversarialErr)
		return 2
	}
	return 0
}

// appendTrajectoryEntry adds one run to a BENCH trajectory file (one entry
// per recorded run, oldest first, so successive PRs grow a comparable perf
// history), creating the file if needed and preserving previously recorded
// entries. The hotpath and churn trajectories share this layout and differ
// only in schema string and entry type.
func appendTrajectoryEntry[T any](path, schema string, r T) error {
	var t struct {
		Schema string `json:"schema"`
		Runs   []T    `json:"runs"`
	}
	t.Schema = schema
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &t); err != nil {
			return fmt.Errorf("existing trajectory %s is corrupt: %w", path, err)
		}
		if t.Schema != schema {
			return fmt.Errorf("trajectory %s has schema %q, want %q — refusing to mix histories", path, t.Schema, schema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	t.Runs = append(t.Runs, r)
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

type stringer string

func (s stringer) String() string { return string(s) }

// table2 prints the static parameter table of the paper.
type table2 struct{}

func (table2) String() string {
	cfg := core.Config{}.WithDefaults()
	return fmt.Sprintf(`Table II: WhatsUp parameters - on each node
  RPSvs           size of the random sample        %d
  RPSf            frequency of gossip in the RPS   1 cycle
  WUPvs           size of the social network       2·fLIKE = %d
  Profile window  news item TTL                    %d cycles
  BEEP TTL        dissemination TTL for dislike    %d`,
		cfg.RPSViewSize, cfg.WUPViewSize, cfg.ProfileWindow, cfg.DislikeTTL)
}
