// Newsflash: a live (goroutine-per-node) WhatsUp fleet over a lossy
// in-memory network, following one user's personalized news feed as it
// arrives. Demonstrates the concurrent runtime rather than the simulator:
// nodes exchange asynchronous messages and the feed below is assembled from
// real deliveries.
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/live"
	"whatsup/internal/news"
)

func main() {
	ds := dataset.Survey(dataset.SurveyConfig{Seed: 11, Scale: 0.1, Cycles: 40})
	fmt.Printf("workload: %s\n", ds.Summary())

	const watched = news.NodeID(3)
	var mu sync.Mutex
	type entry struct {
		title string
		liked bool
		hops  int
	}
	var feed []entry

	runner := live.NewRunner(live.Config{
		Seed:        11,
		Cycles:      40,
		CycleLength: 5 * time.Millisecond,
		NodeConfig:  core.Config{FLike: 8, ProfileWindow: 40},
		OnDelivery: func(d core.Delivery) {
			if d.Node != watched {
				return
			}
			it, _ := ds.ItemByID(d.Item)
			mu.Lock()
			feed = append(feed, entry{title: it.News.Title, liked: d.Liked, hops: d.Hops})
			mu.Unlock()
		},
	}, ds, live.NewChannelNet(11, 0.05, time.Millisecond))
	runner.Run()

	mu.Lock()
	defer mu.Unlock()
	sort.SliceStable(feed, func(i, j int) bool { return feed[i].title < feed[j].title })
	liked := 0
	for _, e := range feed {
		if e.liked {
			liked++
		}
	}
	fmt.Printf("node %d received %d items (%d liked) over a 5%%-lossy network\n",
		watched, len(feed), liked)
	for i, e := range feed {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(feed)-10)
			break
		}
		reaction := "dislike"
		if e.liked {
			reaction = "like   "
		}
		fmt.Printf("  [%s] %-16s (%d hops from source)\n", reaction, e.title, e.hops)
	}
	col := runner.Collector()
	fmt.Printf("fleet: precision %.2f recall %.2f f1 %.2f\n", col.Precision(), col.Recall(), col.F1())
}
