// Serve: the WhatsUp serving stack end to end on one machine — a live
// gossip fleet with no trace workload, an ingestion gateway reading the
// repository's fixture RSS feed (pass -source rss:URL for a real one), and
// the JSON HTTP API. The example ingests the feed, waits for BEEP to
// disseminate it, prints one user's ranked feed, posts a dislike on the top
// item over HTTP and prints the reranked feed, then shuts down. Run it from
// the repository root:
//
//	go run ./examples/serve
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"whatsup"
)

func main() {
	spec := flag.String("source", "file:internal/source/testdata/feed.xml",
		"news source as kind:argument (rss:URL, file:PATH)")
	flag.Parse()

	const users = 20
	const reader = 5

	// A serving fleet has no trace: items arrive from the source while it
	// runs. Opinions supplies the population's tastes for those unseen
	// items — here node n likes about two thirds of all items, so every
	// item finds an interested audience and BEEP has dissent to dampen.
	runner := whatsup.NewLiveRunner(whatsup.LiveRunnerConfig{
		Seed:        1,
		Cycles:      -1, // serve until cancelled
		CycleLength: 10 * time.Millisecond,
		// The example runs at 10 ms cycles, so keep profile entries alive
		// well past the demo's wall-clock (the paper's window is cycles, not
		// seconds).
		NodeConfig:   whatsup.Config{ProfileWindow: 1 << 20},
		FeedCapacity: 32,
		Opinions: whatsup.OpinionFunc(func(n whatsup.NodeID, id whatsup.ItemID) bool {
			return (uint64(n)+uint64(id))%3 != 0
		}),
	}, whatsup.BlankDataset(users), whatsup.NewChannelNet(1, 0, 0))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		runner.RunContext(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()

	src, err := whatsup.NewSource(*spec)
	if err != nil {
		log.Fatal(err)
	}
	gw := whatsup.NewGateway(whatsup.GatewayConfig{Node: 0, Sources: []whatsup.Source{src}}, runner)
	srv := httptest.NewServer(whatsup.NewAPIServer(runner, gw.Catalog()))
	defer srv.Close()
	fmt.Printf("API serving on %s (try: curl %s/v1/nodes/%d/feed)\n", srv.URL, srv.URL, reader)

	// Ingest, then wait for the epidemic to reach the reader.
	deadline := time.Now().Add(30 * time.Second)
	for gw.Published() == 0 {
		if _, err := gw.PollOnce(ctx); err != nil {
			log.Printf("poll: %v (will retry)", err)
		}
		if time.Now().After(deadline) {
			log.Fatal("source never yielded an item")
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("gateway ingested %d items from %s\n", gw.Published(), src.Name())

	feed := waitForFeed(srv.URL, reader, deadline)
	fmt.Printf("\nnode %d's feed (%d entries):\n", reader, len(feed.Entries))
	printFeed(feed)

	// Dislike the top item over the API; feedback applies synchronously on
	// the node's goroutine, so the next read shows the rerank.
	top := feed.Entries[0]
	body := fmt.Sprintf(`{"item":%q,"liked":false}`, top.Item.ID)
	resp, err := http.Post(fmt.Sprintf("%s/v1/nodes/%d/feedback", srv.URL, reader),
		"application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nposted dislike on %q (status %d); reranked feed:\n", top.Item.Title, resp.StatusCode)
	printFeed(getFeed(srv.URL, reader))
}

// feedDoc mirrors the API's feed response shape.
type feedDoc struct {
	Entries []struct {
		Item struct {
			ID    string `json:"id"`
			Title string `json:"title"`
		} `json:"item"`
		Score float64 `json:"score"`
		Liked bool    `json:"liked"`
		Hops  int     `json:"hops"`
	} `json:"entries"`
}

func getFeed(base string, node int) feedDoc {
	resp, err := http.Get(fmt.Sprintf("%s/v1/nodes/%d/feed", base, node))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out feedDoc
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}

func waitForFeed(base string, node int, deadline time.Time) feedDoc {
	for {
		if feed := getFeed(base, node); len(feed.Entries) > 0 {
			return feed
		}
		if time.Now().After(deadline) {
			log.Fatal("dissemination never reached the reader")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func printFeed(feed feedDoc) {
	for i, e := range feed.Entries {
		mark := "dislike"
		if e.Liked {
			mark = "like"
		}
		fmt.Printf("  %2d. score %+.3f  [%s, %d hops]  %s\n", i+1, e.Score, mark, e.Hops, e.Item.Title)
	}
}
