// Coldstart: reproduce the joining-node dynamics of Figure 7 in miniature.
// A node with the same interests as a reference user joins mid-run via the
// cold-start procedure (inherit views, rate the 3 most popular items) and we
// watch its WUP view similarity converge towards the reference node's.
package main

import (
	"fmt"
	"math/rand"

	"whatsup"
	"whatsup/internal/core"
)

func main() {
	ds := whatsup.SurveyDataset(3, 0.1)
	fmt.Printf("workload: %s\n", ds.Summary())

	const refID = 5
	joinID := whatsup.NodeID(ds.Users)

	// Opinions: the joiner mirrors the reference user's taste.
	opinions := whatsup.OpinionFunc(func(n whatsup.NodeID, item whatsup.ItemID) bool {
		if n == joinID {
			n = refID
		}
		return ds.Likes(n, item)
	})

	sim := whatsup.NewSimulation(ds, whatsup.SimulationConfig{
		Node: whatsup.Config{FLike: 8, ProfileWindow: 20},
		Seed: 3,
	})

	joinCycle := ds.Cycles / 2
	var joiner *core.Node
	ref := sim.Node(refID)

	for cycle := 1; cycle <= ds.Cycles; cycle++ {
		if cycle == joinCycle {
			// Cold start: inherit the views of a random established node.
			host := sim.Node(whatsup.NodeID(rand.New(rand.NewSource(9)).Intn(ds.Users)))
			joiner = whatsup.NewNode(joinID, whatsup.Config{FLike: 8, ProfileWindow: 20}, opinions, 99)
			joiner.ColdStart(host.RPS().View().Entries(), host.WUP().View().Entries(), int64(cycle))
			sim.AddPeer(joiner)
			fmt.Printf("cycle %3d: node %d joins with %d cold-start ratings\n",
				cycle, joinID, joiner.UserProfile().Len())
		}
		sim.Step()
		if cycle%5 == 0 && cycle >= joinCycle-10 {
			refSim := ref.WUP().AverageSimilarity(ref.UserProfile())
			line := fmt.Sprintf("cycle %3d: reference view similarity %.2f", cycle, refSim)
			if joiner != nil {
				line += fmt.Sprintf(", joiner %.2f (profile %d entries)",
					joiner.WUP().AverageSimilarity(joiner.UserProfile()), joiner.UserProfile().Len())
			}
			fmt.Println(line)
		}
	}
}
