// Communities: run WhatsUp on the synthetic Arxiv-style workload with
// strictly disjoint interest communities and watch the implicit social
// network organize itself: the fraction of WUP-view links pointing inside a
// node's own community climbs as gossip rounds pass, and the overlay
// becomes one strongly connected component.
package main

import (
	"fmt"

	"whatsup"
	"whatsup/internal/graph"
)

func main() {
	ds := whatsup.SyntheticDataset(7, 0.08)
	fmt.Printf("workload: %s\n", ds.Summary())

	sim := whatsup.NewSimulation(ds, whatsup.SimulationConfig{
		Node: whatsup.Config{FLike: 8},
		Seed: 7,
	})

	// Ground truth: each user's community is the topic of the items it
	// likes (communities are disjoint in this workload).
	communityOf := make([]int, ds.Users)
	for u := range communityOf {
		communityOf[u] = -1
		for i := range ds.Items {
			if ds.LikesIndex(u, i) {
				communityOf[u] = ds.Topic(i)
				break
			}
		}
	}

	purity := func() float64 {
		in, total := 0, 0
		for u := 0; u < ds.Users; u++ {
			node := sim.Node(whatsup.NodeID(u))
			for _, neighbour := range node.WUP().View().Nodes() {
				total++
				if communityOf[u] >= 0 && communityOf[u] == communityOf[neighbour] {
					in++
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(in) / float64(total)
	}

	overlay := func() *graph.Directed {
		g := graph.NewDirected(ds.Users)
		for u := 0; u < ds.Users; u++ {
			for _, v := range sim.Node(whatsup.NodeID(u)).WUP().View().Nodes() {
				g.AddEdge(u, int(v))
			}
		}
		return g
	}

	for cycle := 1; cycle <= ds.Cycles; cycle++ {
		sim.Step()
		if cycle%10 == 0 || cycle == 1 {
			g := overlay()
			fmt.Printf("cycle %3d: community purity %.2f, LSCC %.2f, weak components %d\n",
				cycle, purity(), g.LargestSCCFraction(), g.WeakComponents())
		}
	}

	r := sim.Results()
	fmt.Printf("final: precision %.2f recall %.2f f1 %.2f\n", r.Precision, r.Recall, r.F1)
}
