// Quickstart: simulate a WhatsUp fleet on the survey workload and print the
// paper's headline metrics. This is the smallest end-to-end use of the
// public API.
package main

import (
	"fmt"

	"whatsup"
)

func main() {
	// A quarter-scale survey workload: ~120 users, ~250 news items, rated
	// along topic lines as in the paper's user study.
	ds := whatsup.SurveyDataset(1, 0.25)
	fmt.Printf("workload: %s\n", ds.Summary())

	// One WhatsUp node per user; fLIKE=10 is the paper's sweet spot
	// (Table III). All other parameters take the Table II defaults.
	sim := whatsup.NewSimulation(ds, whatsup.SimulationConfig{
		Node: whatsup.Config{FLike: 10},
		Seed: 42,
	})
	sim.Run()

	r := sim.Results()
	fmt.Printf("precision %.2f  recall %.2f  f1 %.2f\n", r.Precision, r.Recall, r.F1)
	fmt.Printf("messages: %d (%.0f per user)\n", r.Messages, float64(r.Messages)/float64(ds.Users))

	// Inspect one node's implicit social network.
	node := sim.Node(0)
	fmt.Printf("node 0: %d profile entries, %d WUP neighbours, %d RPS neighbours\n",
		node.UserProfile().Len(), node.WUP().View().Len(), node.RPS().View().Len())
}
