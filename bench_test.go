// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section V) at a reduced scale, one bench per exhibit. Each bench reports
// the exhibit's headline numbers as custom metrics, so `go test -bench=.`
// doubles as a smoke reproduction; cmd/whatsup-bench runs the same drivers
// at larger scales with full output.
package whatsup_test

import (
	"fmt"
	"math/rand"
	"testing"

	"whatsup/internal/core"
	"whatsup/internal/experiments"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/sim"
)

// benchOptions keeps bench runs fast and deterministic.
func benchOptions() experiments.Options {
	return experiments.Options{Seed: 1, Scale: 0.1, Workers: 2}
}

// scalingWorld builds a 2-community world of n peers for the engine-scaling
// benchmark: even nodes like even items, odd nodes like odd items.
func scalingWorld(n, items, cycles int, seed int64) ([]sim.Peer, []sim.Publication, *metrics.Collector) {
	opinions := core.OpinionFunc(func(node news.NodeID, item news.ID) bool {
		return int(node)%2 == int(item)%2
	})
	cfg := core.Config{FLike: 6, RPSViewSize: 12, ProfileWindow: int64(cycles)}
	peers := make([]sim.Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", cfg, opinions,
			rand.New(rand.NewSource(seed+int64(i))))
	}
	col := metrics.NewCollector()
	pubs := make([]sim.Publication, 0, items)
	for k := 0; k < items; k++ {
		source := news.NodeID((2*k + k%2) % n)
		if int(source)%2 != k%2 {
			source = news.NodeID((int(source) + 1) % n)
		}
		it := news.New(fmt.Sprintf("item-%d", k), "d", "l", int64(1+k*cycles/items), source)
		it.ID = news.ID(k)
		pubs = append(pubs, sim.Publication{Cycle: int64(1 + k*cycles/items), Source: source, Item: it})
		col.RegisterItem(it.ID, n/2)
	}
	for i := 0; i < n; i++ {
		col.RegisterNode(news.NodeID(i), items/2)
	}
	return peers, pubs, col
}

// BenchmarkEngineScaling measures the parallel engine itself: one fixed
// 1 000-peer run at 1, 2, 4 and 8 workers. Results are bit-identical across
// the sub-benchmarks (the engine's determinism contract); only wall-clock
// changes. Speedup requires GOMAXPROCS > 1 — on a single-core host all
// worker counts degenerate to serial execution.
func BenchmarkEngineScaling(b *testing.B) {
	const peersN, items, cycles = 1000, 60, 10
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				peers, pubs, col := scalingWorld(peersN, items, cycles, 1)
				e := sim.New(sim.Config{
					Seed: 1, Cycles: cycles, LossRate: 0.05, Workers: workers,
					Publications: pubs,
				}, peers, col)
				b.StartTimer()
				e.Bootstrap()
				e.Run()
				f1 = col.F1()
			}
			b.ReportMetric(f1, "F1")
		})
	}
}

func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(benchOptions())
		if len(r.Rows) != 3 {
			b.Fatal("workloads missing")
		}
	}
}

func BenchmarkTable3BestOfEachApproach(b *testing.B) {
	var f1 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(benchOptions())
		f1 = r.Row("WhatsUp").F1
	}
	b.ReportMetric(f1, "whatsup-F1")
}

func BenchmarkTable4DislikePath(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		share = experiments.Table4(benchOptions()).ViaDislikeShare()
	}
	b.ReportMetric(share, "via-dislike-share")
}

func BenchmarkTable5ExplicitFiltering(b *testing.B) {
	var cascadeRecall, whatsupRecall float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table5(benchOptions())
		cascadeRecall = r.Row("digg", "Cascade").Recall
		whatsupRecall = r.Row("digg", "WhatsUp").Recall
	}
	b.ReportMetric(cascadeRecall, "cascade-recall")
	b.ReportMetric(whatsupRecall, "whatsup-recall")
}

func BenchmarkTable6MessageLoss(b *testing.B) {
	var clean, lossy float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table6(benchOptions())
		clean = r.Cell(0, 6).F1
		lossy = r.Cell(0.20, 6).F1
	}
	b.ReportMetric(clean, "F1-loss0-f6")
	b.ReportMetric(lossy, "F1-loss20-f6")
}

func BenchmarkFig3F1VsFanout(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3("survey", benchOptions())
		for _, s := range r.Series {
			if s.Alg == experiments.WhatsUp {
				_, best = s.BestF1()
			}
		}
	}
	b.ReportMetric(best, "whatsup-best-F1")
}

func BenchmarkFig3Synthetic(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3("synthetic", benchOptions())
		for _, s := range r.Series {
			if s.Alg == experiments.WhatsUp {
				_, best = s.BestF1()
			}
		}
	}
	b.ReportMetric(best, "whatsup-best-F1")
}

func BenchmarkFig3Digg(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3("digg", benchOptions())
		for _, s := range r.Series {
			if s.Alg == experiments.WhatsUp {
				_, best = s.BestF1()
			}
		}
	}
	b.ReportMetric(best, "whatsup-best-F1")
}

func BenchmarkFig4LSCC(b *testing.B) {
	var lsccAtMax float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(benchOptions())
		pts := r.Series[0].Points
		lsccAtMax = pts[len(pts)-1].LSCC
	}
	b.ReportMetric(lsccAtMax, "lscc-at-max-fanout")
}

func BenchmarkFig5TTL(b *testing.B) {
	var ttl0, ttl4 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(benchOptions())
		ttl0 = r.Points[0].Recall
		ttl4 = r.Points[3].Recall
	}
	b.ReportMetric(ttl0, "recall-ttl0")
	b.ReportMetric(ttl4, "recall-ttl4")
}

func BenchmarkFig6Hops(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = experiments.Fig6(benchOptions()).MeanInfectionHops
	}
	b.ReportMetric(mean, "mean-infection-hops")
}

func BenchmarkFig7Dynamics(b *testing.B) {
	var wupConv float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(benchOptions(), experiments.Fig7Config{
			Trials: 1, EventCycle: 15, TotalCycles: 40, Window: 10,
		})
		wupConv = float64(r.WhatsUp.JoinConvergence)
	}
	b.ReportMetric(wupConv, "join-convergence-cycles")
}

func BenchmarkFig8Deployment(b *testing.B) {
	var f1 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchOptions(), experiments.Fig8Config{
			Fanouts: []int{3, 6}, Cycles: 20, SkipLive: true,
		})
		f1 = r.Points[1].Simulation
	}
	b.ReportMetric(f1, "F1-sim-f6")
}

func BenchmarkFig9Centralized(b *testing.B) {
	var central, decentral float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchOptions())
		central = r.Series[0].Best().F1
		decentral = r.Series[2].Best().F1
	}
	b.ReportMetric(central, "central-F1")
	b.ReportMetric(decentral, "whatsup-F1")
}

func BenchmarkFig10Popularity(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		adv = experiments.Fig10(benchOptions()).UnpopularAdvantage()
	}
	b.ReportMetric(adv, "unpopular-recall-advantage")
}

func BenchmarkFig11Sociability(b *testing.B) {
	var corr float64
	for i := 0; i < b.N; i++ {
		corr = experiments.Fig11(benchOptions()).Correlation
	}
	b.ReportMetric(corr, "sociability-F1-correlation")
}

func BenchmarkAblationWUPViewSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := experiments.AblationWUPViewSize(benchOptions()).Points; len(pts) != 3 {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkAblationProfileWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := experiments.AblationProfileWindow(benchOptions()).Points; len(pts) != 4 {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkAblationRPSViewSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := experiments.AblationRPSViewSize(benchOptions()).Points; len(pts) != 5 {
			b.Fatal("ablation incomplete")
		}
	}
}
