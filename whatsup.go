// Package whatsup is a Go reproduction of WHATSUP, the decentralized
// instant news recommender of Boutet, Frey, Guerraoui, Jégou and Kermarrec
// (IEEE IPDPS 2013). It provides:
//
//   - the WhatsUp node: the WUP implicit social network (random peer
//     sampling + similarity clustering) and the BEEP biased epidemic
//     dissemination protocol with its orientation and amplification
//     mechanisms;
//   - a deterministic parallel cycle-based simulator (bit-identical results
//     for any worker count) and two concurrent live runtimes (lossy
//     in-memory channels and TCP loopback);
//   - the three evaluation workloads of the paper (synthetic
//     Arxiv-community, Digg-like, survey-like) and all competitor systems;
//   - experiment drivers regenerating every table and figure of the paper's
//     evaluation (see internal/experiments and cmd/whatsup-bench).
//
// The root package is a thin façade over the internal packages for
// programmatic use; see examples/ for runnable entry points.
package whatsup

import (
	"math/rand"
	"time"

	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/live"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/profile"
	"whatsup/internal/sim"
)

// Re-exported identifiers so applications can use the library without
// touching internal packages.
type (
	// NodeID identifies a peer.
	NodeID = news.NodeID
	// ItemID is the 8-byte content hash of a news item.
	ItemID = news.ID
	// Item is a news item.
	Item = news.Item
	// Config holds the WhatsUp node parameters (Table II of the paper).
	Config = core.Config
	// Node is a WhatsUp peer (WUP + BEEP).
	Node = core.Node
	// Opinions supplies like/dislike reactions.
	Opinions = core.Opinions
	// OpinionFunc adapts a function to Opinions.
	OpinionFunc = core.OpinionFunc
	// Delivery reports one item reception.
	Delivery = core.Delivery
	// Collector accumulates evaluation metrics.
	Collector = metrics.Collector
	// Dataset is an evaluation workload.
	Dataset = dataset.Dataset
	// Profile is an interest profile.
	Profile = profile.Profile
	// ChurnSchedule declares membership events (joins, leaves, crashes,
	// rejoins) by cycle; see NewSimulation and sim.ChurnSchedule.
	ChurnSchedule = sim.ChurnSchedule
	// ChurnEvent is one scheduled membership transition.
	ChurnEvent = sim.ChurnEvent
	// MemberState is a peer's lifecycle state (Online, Offline, Departed).
	MemberState = sim.MemberState
)

// Churn event kinds and lifecycle states, re-exported for schedule building.
const (
	ChurnJoin   = sim.ChurnJoin
	ChurnLeave  = sim.ChurnLeave
	ChurnCrash  = sim.ChurnCrash
	ChurnRejoin = sim.ChurnRejoin

	Online   = sim.Online
	Offline  = sim.Offline
	Departed = sim.Departed
)

// FlashCrowd builds a flash-crowd join schedule (see sim.FlashCrowd).
func FlashCrowd(start int64, firstID NodeID, joiners, perCycle int) ChurnSchedule {
	return sim.FlashCrowd(start, firstID, joiners, perCycle)
}

// Metrics for clustering and orientation.
var (
	// WUPMetric is the paper's asymmetric similarity metric.
	WUPMetric profile.Metric = profile.WUP{}
	// CosineMetric is classical cosine similarity.
	CosineMetric profile.Metric = profile.Cosine{}
)

// NewItem builds a news item, deriving its identifier from the content.
func NewItem(title, description, link string, created int64, source NodeID) Item {
	return news.New(title, description, link, created, source)
}

// NewNode constructs a WhatsUp node with the given configuration; zero
// fields take the paper's defaults.
func NewNode(id NodeID, cfg Config, opinions Opinions, seed int64) *Node {
	return core.NewNode(id, "", cfg, opinions, rand.New(rand.NewSource(seed)))
}

// Workload constructors at a given scale (1.0 = Table I sizes).

// SyntheticDataset generates the Arxiv-style community workload.
func SyntheticDataset(seed int64, scale float64) *Dataset {
	return dataset.Synthetic(dataset.SyntheticConfig{Seed: seed, Scale: scale})
}

// DiggDataset generates the Digg-like workload with its social graph.
func DiggDataset(seed int64, scale float64) *Dataset {
	return dataset.Digg(dataset.DiggConfig{Seed: seed, Scale: scale})
}

// SurveyDataset generates the survey-like workload.
func SurveyDataset(seed int64, scale float64) *Dataset {
	return dataset.Survey(dataset.SurveyConfig{Seed: seed, Scale: scale})
}

// Simulation couples a workload with a fleet of WhatsUp nodes under the
// deterministic cycle engine.
type Simulation struct {
	engine *sim.Engine
	col    *metrics.Collector
	ds     *Dataset
}

// SimulationConfig parameterizes NewSimulation.
type SimulationConfig struct {
	// Node holds the per-node protocol parameters.
	Node Config
	// Seed drives all randomness (default 1).
	Seed int64
	// LossRate uniformly drops messages (0 = reliable).
	LossRate float64
	// Cycles overrides the workload's experiment length.
	Cycles int
	// Workers is the engine worker pool (0 = GOMAXPROCS). Results are
	// bit-identical for any value; see internal/sim for the determinism
	// contract.
	Workers int
	// Churn schedules membership events; an empty schedule keeps the
	// population static (and results bit-identical with earlier releases).
	// Scheduled joiners are built as WhatsUp nodes with the workload's
	// opinions (ids past the workload population reuse id mod Users) and
	// cold-start from a live host (Section II-D). Set Node.DescriptorTTL so
	// the surviving views evict departed peers' descriptors.
	Churn ChurnSchedule
	// DepartureNotices enables the churn protocol's graceful-departure
	// notices: a leaver hands tombstones to its neighbours, which evict it
	// immediately and forward the notice on their own gossip for one
	// eviction horizon instead of waiting out Node.DescriptorTTL.
	DepartureNotices bool
	// RefillWatermark triggers an anti-entropy view refill when churn
	// drains an RPS or WUP view below this occupancy fraction (0 = off;
	// 0.5 is a reasonable setting).
	RefillWatermark float64
	// OnDelivery observes every first-time delivery.
	OnDelivery func(d Delivery, cycle int64)
}

// NewSimulation builds a simulation of one WhatsUp node per workload user,
// with the workload's publication schedule.
func NewSimulation(ds *Dataset, cfg SimulationConfig) *Simulation {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cycles := cfg.Cycles
	if cycles == 0 {
		cycles = ds.Cycles
	}
	op := ds.Opinions()
	peers := make([]sim.Peer, ds.Users)
	for i := 0; i < ds.Users; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", cfg.Node, op,
			rand.New(rand.NewSource(cfg.Seed*1_000_003+int64(i))))
	}
	col := metrics.NewCollector()
	pubs := make([]sim.Publication, 0, len(ds.Items))
	for i := range ds.Items {
		it := ds.Items[i]
		if ds.IsWarmup(i) {
			col.RegisterWarmupItem(it.News.ID, it.Interested)
		} else {
			col.RegisterItem(it.News.ID, it.Interested)
		}
		pubs = append(pubs, sim.Publication{Cycle: it.Cycle, Source: it.News.Source, Item: it.News})
	}
	for u := 0; u < ds.Users; u++ {
		col.RegisterNode(news.NodeID(u), ds.UserInterestCount(news.NodeID(u)))
	}
	engine := sim.New(sim.Config{
		Seed:             cfg.Seed,
		Cycles:           cycles,
		LossRate:         cfg.LossRate,
		Workers:          cfg.Workers,
		DepartureNotices: cfg.DepartureNotices,
		RefillWatermark:  cfg.RefillWatermark,
		Publications:     pubs,
		Churn:            cfg.Churn,
		NewPeer: func(id news.NodeID) sim.Peer {
			opID := id
			if int(opID) >= ds.Users {
				opID = news.NodeID(int(opID) % ds.Users)
			}
			joinOp := core.OpinionFunc(func(_ news.NodeID, item news.ID) bool {
				return op.Likes(opID, item)
			})
			return core.NewNode(id, "", cfg.Node, joinOp,
				rand.New(rand.NewSource(cfg.Seed*1_000_003+int64(id))))
		},
		OnDelivery: cfg.OnDelivery,
	}, peers, col)
	engine.Bootstrap()
	return &Simulation{engine: engine, col: col, ds: ds}
}

// MemberState returns a node's lifecycle state (ok is false for unknown
// ids); Online/Leave-style transitions are driven by SimulationConfig.Churn.
func (s *Simulation) MemberState(id NodeID) (MemberState, bool) {
	return s.engine.State(id)
}

// Step advances one gossip cycle.
func (s *Simulation) Step() { s.engine.Step() }

// AddPeer registers an extra node between cycles (e.g. a cold-starting
// joiner); the caller seeds its views, typically via Node.ColdStart.
func (s *Simulation) AddPeer(n *Node) { s.engine.AddPeer(n) }

// Run executes the full experiment.
func (s *Simulation) Run() { s.engine.Run() }

// Node returns the node with the given id (nil if unknown).
func (s *Simulation) Node(id NodeID) *Node {
	if p := s.engine.Peer(id); p != nil {
		if n, ok := p.(*core.Node); ok {
			return n
		}
	}
	return nil
}

// Metrics returns the collector with precision/recall/F1 and traffic.
func (s *Simulation) Metrics() *Collector { return s.col }

// Results summarizes a run.
type Results struct {
	Precision float64
	Recall    float64
	F1        float64
	Messages  int64
}

// Results returns the headline numbers of the run.
func (s *Simulation) Results() Results {
	return Results{
		Precision: s.col.Precision(),
		Recall:    s.col.Recall(),
		F1:        s.col.F1(),
		Messages:  s.col.TotalMessages(),
	}
}

// LiveConfig parameterizes a concurrent goroutine-per-node run.
type LiveConfig struct {
	// Node holds the per-node protocol parameters.
	Node Config
	// Seed drives workload scheduling and per-node randomness.
	Seed int64
	// Cycles and CycleLength define the run duration in real time.
	Cycles      int
	CycleLength time.Duration
	// LossRate and Latency configure the in-memory lossy network.
	LossRate float64
	Latency  time.Duration
	// UseTCP runs over real TCP loopback sockets with the congestion model
	// instead of in-memory channels.
	UseTCP bool
	// Churn schedules membership events for the live fleet, applied by the
	// runtime's membership controller at cycle-tick boundaries: joins spawn
	// fresh node goroutines that cold-start from a live host, crashes tear
	// the node's transport endpoints down abruptly, graceful leaves flush
	// pending batches first, and rejoins re-register and re-seed views from
	// an online sample. Joining ids beyond the dataset population like
	// nothing under the dataset's opinions; set Node.DescriptorTTL so the
	// surviving views evict departed members' descriptors.
	Churn ChurnSchedule
	// DepartureNotices and RefillWatermark enable the churn protocol's
	// departure notices and anti-entropy view refill for the live fleet,
	// with the same semantics as SimulationConfig.
	DepartureNotices bool
	RefillWatermark  float64
}

// RunLive executes a live (concurrent, wall-clock) run of the workload and
// returns its metrics. Unlike Simulation, live runs are not deterministic.
func RunLive(ds *Dataset, cfg LiveConfig) *Collector {
	var network live.Network
	if cfg.UseTCP {
		network = live.NewTCPNet(live.TCPNetConfig{SlowEvery: 4})
	} else {
		network = live.NewChannelNet(cfg.Seed, cfg.LossRate, cfg.Latency)
	}
	r := live.NewRunner(live.Config{
		Seed:             cfg.Seed,
		Cycles:           cfg.Cycles,
		CycleLength:      cfg.CycleLength,
		NodeConfig:       cfg.Node,
		Churn:            cfg.Churn,
		DepartureNotices: cfg.DepartureNotices,
		RefillWatermark:  cfg.RefillWatermark,
	}, ds, network)
	r.Run()
	return r.Collector()
}
