// Package whatsup is a Go reproduction of WHATSUP, the decentralized
// instant news recommender of Boutet, Frey, Guerraoui, Jégou and Kermarrec
// (IEEE IPDPS 2013). It provides:
//
//   - the WhatsUp node: the WUP implicit social network (random peer
//     sampling + similarity clustering) and the BEEP biased epidemic
//     dissemination protocol with its orientation and amplification
//     mechanisms;
//   - a deterministic parallel cycle-based simulator (bit-identical results
//     for any worker count) and two concurrent live runtimes (lossy
//     in-memory channels and TCP loopback);
//   - the three evaluation workloads of the paper (synthetic
//     Arxiv-community, Digg-like, survey-like) and all competitor systems;
//   - experiment drivers regenerating every table and figure of the paper's
//     evaluation (see internal/experiments and cmd/whatsup-bench);
//   - a serving stack in the shape of the paper's PlanetLab prototype: an
//     ingestion gateway polling RSS/Atom or fixture sources into the gossip
//     mesh, and a JSON HTTP API exposing per-node feeds, feedback and fleet
//     stats (see cmd/whatsup-serve).
//
// The root package is a thin façade over the internal packages for
// programmatic use, organized in sections: news items and nodes, workloads,
// the deterministic simulation, churn schedules, the live runtime, and
// serving. See examples/ for runnable entry points.
package whatsup

import (
	"math/rand"
	"time"

	"whatsup/internal/api"
	"whatsup/internal/core"
	"whatsup/internal/dataset"
	"whatsup/internal/live"
	"whatsup/internal/metrics"
	"whatsup/internal/news"
	"whatsup/internal/profile"
	"whatsup/internal/sim"
	"whatsup/internal/source"
)

// ── News items and nodes ────────────────────────────────────────────────
//
// The protocol vocabulary: identifiers, items, the WhatsUp node itself and
// the interfaces it consumes.

type (
	// NodeID identifies a peer.
	NodeID = news.NodeID
	// ItemID is the 8-byte content hash of a news item.
	ItemID = news.ID
	// Item is a news item.
	Item = news.Item
	// Config holds the WhatsUp node parameters (Table II of the paper).
	Config = core.Config
	// Node is a WhatsUp peer (WUP + BEEP).
	Node = core.Node
	// Opinions supplies like/dislike reactions.
	Opinions = core.Opinions
	// OpinionFunc adapts a function to Opinions.
	OpinionFunc = core.OpinionFunc
	// Delivery reports one item reception.
	Delivery = core.Delivery
	// Profile is an interest profile.
	Profile = profile.Profile
)

// NewItem builds a news item, deriving its identifier from the content.
func NewItem(title, description, link string, created int64, source NodeID) Item {
	return news.New(title, description, link, created, source)
}

// NewNode constructs a WhatsUp node with the given configuration; zero
// fields take the paper's defaults.
func NewNode(id NodeID, cfg Config, opinions Opinions, seed int64) *Node {
	return core.NewNode(id, "", cfg, opinions, rand.New(rand.NewSource(seed)))
}

// ── Workloads ───────────────────────────────────────────────────────────
//
// Constructors for the paper's three evaluation traces at a given scale
// (1.0 = Table I sizes), plus the blank workload of a serving fleet.

// Dataset is an evaluation workload.
type Dataset = dataset.Dataset

// SyntheticDataset generates the Arxiv-style community workload.
func SyntheticDataset(seed int64, scale float64) *Dataset {
	return dataset.Synthetic(dataset.SyntheticConfig{Seed: seed, Scale: scale})
}

// DiggDataset generates the Digg-like workload with its social graph.
func DiggDataset(seed int64, scale float64) *Dataset {
	return dataset.Digg(dataset.DiggConfig{Seed: seed, Scale: scale})
}

// SurveyDataset generates the survey-like workload.
func SurveyDataset(seed int64, scale float64) *Dataset {
	return dataset.Survey(dataset.SurveyConfig{Seed: seed, Scale: scale})
}

// BlankDataset builds a workload with users but no trace items: the shape of
// a serving fleet, whose items arrive from ingestion sources while it runs.
// Pair it with LiveRunnerConfig.Opinions for the population's interest model.
func BlankDataset(users int) *Dataset {
	return dataset.Blank(users, 0)
}

// ── Deterministic simulation ────────────────────────────────────────────
//
// One WhatsUp node per workload user under the cycle engine; results are
// bit-identical for any worker count.

// Collector accumulates evaluation metrics.
type Collector = metrics.Collector

// Simulation couples a workload with a fleet of WhatsUp nodes under the
// deterministic cycle engine.
type Simulation struct {
	engine *sim.Engine
	col    *metrics.Collector
	ds     *Dataset
}

// SimulationConfig parameterizes NewSimulation.
type SimulationConfig struct {
	// Node holds the per-node protocol parameters.
	Node Config
	// Seed drives all randomness (default 1).
	Seed int64
	// LossRate uniformly drops messages (0 = reliable).
	LossRate float64
	// Cycles overrides the workload's experiment length.
	Cycles int
	// Workers is the engine worker pool (0 = GOMAXPROCS). Results are
	// bit-identical for any value; see internal/sim for the determinism
	// contract.
	Workers int
	// Shards splits the engine's membership table into that many
	// struct-of-arrays slabs with codec-routed inter-shard gossip
	// (0 or 1 = single slab). Results are bit-identical for any value.
	Shards int
	// Churn schedules membership events; an empty schedule keeps the
	// population static (and results bit-identical with earlier releases).
	// Scheduled joiners are built as WhatsUp nodes with the workload's
	// opinions (ids past the workload population reuse id mod Users) and
	// cold-start from a live host (Section II-D). Set Node.DescriptorTTL so
	// the surviving views evict departed peers' descriptors.
	Churn ChurnSchedule
	// DepartureNotices enables the churn protocol's graceful-departure
	// notices: a leaver hands tombstones to its neighbours, which evict it
	// immediately and forward the notice on their own gossip for one
	// eviction horizon instead of waiting out Node.DescriptorTTL.
	DepartureNotices bool
	// RefillWatermark triggers an anti-entropy view refill when churn
	// drains an RPS or WUP view below this occupancy fraction (0 = off;
	// 0.5 is a reasonable setting).
	RefillWatermark float64
	// OnDelivery observes every first-time delivery.
	OnDelivery func(d Delivery, cycle int64)
}

// NewSimulation builds a simulation of one WhatsUp node per workload user,
// with the workload's publication schedule.
func NewSimulation(ds *Dataset, cfg SimulationConfig) *Simulation {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cycles := cfg.Cycles
	if cycles == 0 {
		cycles = ds.Cycles
	}
	// At very large populations, bound the scale-sensitive protocol knobs
	// (no-op at paper scale; see core.Config.ForPopulation).
	cfg.Node = cfg.Node.ForPopulation(ds.Users)
	op := ds.Opinions()
	peers := make([]sim.Peer, ds.Users)
	for i := 0; i < ds.Users; i++ {
		peers[i] = core.NewNode(news.NodeID(i), "", cfg.Node, op,
			rand.New(rand.NewSource(cfg.Seed*1_000_003+int64(i))))
	}
	col := metrics.NewCollector()
	pubs := make([]sim.Publication, 0, len(ds.Items))
	for i := range ds.Items {
		it := ds.Items[i]
		if ds.IsWarmup(i) {
			col.RegisterWarmupItem(it.News.ID, it.Interested)
		} else {
			col.RegisterItem(it.News.ID, it.Interested)
		}
		pubs = append(pubs, sim.Publication{Cycle: it.Cycle, Source: it.News.Source, Item: it.News})
	}
	for u := 0; u < ds.Users; u++ {
		col.RegisterNode(news.NodeID(u), ds.UserInterestCount(news.NodeID(u)))
	}
	engine := sim.New(sim.Config{
		Seed:             cfg.Seed,
		Cycles:           cycles,
		LossRate:         cfg.LossRate,
		Workers:          cfg.Workers,
		Shards:           cfg.Shards,
		DepartureNotices: cfg.DepartureNotices,
		RefillWatermark:  cfg.RefillWatermark,
		Publications:     pubs,
		Churn:            cfg.Churn,
		NewPeer: func(id news.NodeID) sim.Peer {
			opID := id
			if int(opID) >= ds.Users {
				opID = news.NodeID(int(opID) % ds.Users)
			}
			joinOp := core.OpinionFunc(func(_ news.NodeID, item news.ID) bool {
				return op.Likes(opID, item)
			})
			return core.NewNode(id, "", cfg.Node, joinOp,
				rand.New(rand.NewSource(cfg.Seed*1_000_003+int64(id))))
		},
		OnDelivery: cfg.OnDelivery,
	}, peers, col)
	engine.Bootstrap()
	return &Simulation{engine: engine, col: col, ds: ds}
}

// MemberState returns a node's lifecycle state (ok is false for unknown
// ids); Online/Leave-style transitions are driven by SimulationConfig.Churn.
func (s *Simulation) MemberState(id NodeID) (MemberState, bool) {
	return s.engine.State(id)
}

// Step advances one gossip cycle.
func (s *Simulation) Step() { s.engine.Step() }

// AddPeer registers an extra node between cycles (e.g. a cold-starting
// joiner); the caller seeds its views, typically via Node.ColdStart.
func (s *Simulation) AddPeer(n *Node) { s.engine.AddPeer(n) }

// Run executes the full experiment.
func (s *Simulation) Run() { s.engine.Run() }

// Node returns the node with the given id (nil if unknown).
func (s *Simulation) Node(id NodeID) *Node {
	if p := s.engine.Peer(id); p != nil {
		if n, ok := p.(*core.Node); ok {
			return n
		}
	}
	return nil
}

// Metrics returns the collector with precision/recall/F1 and traffic.
func (s *Simulation) Metrics() *Collector { return s.col }

// Results summarizes a run.
type Results struct {
	Precision float64
	Recall    float64
	F1        float64
	Messages  int64
}

// Results returns the headline numbers of the run.
func (s *Simulation) Results() Results {
	return Results{
		Precision: s.col.Precision(),
		Recall:    s.col.Recall(),
		F1:        s.col.F1(),
		Messages:  s.col.TotalMessages(),
	}
}

// ── Churn schedules ─────────────────────────────────────────────────────
//
// Membership dynamics shared by the simulation and the live runtime: typed
// schedules of joins, leaves, crashes and rejoins, applied at cycle
// boundaries.

type (
	// ChurnSchedule declares membership events (joins, leaves, crashes,
	// rejoins) by cycle; see NewSimulation and sim.ChurnSchedule.
	ChurnSchedule = sim.ChurnSchedule
	// ChurnEvent is one scheduled membership transition.
	ChurnEvent = sim.ChurnEvent
	// MemberState is a peer's lifecycle state (Online, Offline, Departed).
	MemberState = sim.MemberState
)

// Churn event kinds and lifecycle states, re-exported for schedule building.
const (
	ChurnJoin   = sim.ChurnJoin
	ChurnLeave  = sim.ChurnLeave
	ChurnCrash  = sim.ChurnCrash
	ChurnRejoin = sim.ChurnRejoin

	Online   = sim.Online
	Offline  = sim.Offline
	Departed = sim.Departed
)

// FlashCrowd builds a flash-crowd join schedule (see sim.FlashCrowd).
func FlashCrowd(start int64, firstID NodeID, joiners, perCycle int) ChurnSchedule {
	return sim.FlashCrowd(start, firstID, joiners, perCycle)
}

// ── Live runtime ────────────────────────────────────────────────────────
//
// Concurrent goroutine-per-node fleets over real transports. RunLive is the
// one-shot batch entry point; NewLiveRunner exposes the runner itself, whose
// mid-run surface (Feed, Feedback, Publish, Snapshot, Stats) backs the
// serving stack below.

type (
	// LiveRunner drives a concurrent fleet of WhatsUp nodes over a
	// transport. While the fleet runs, its Feed/Feedback/Publish/Snapshot/
	// Stats methods are safe to call from any goroutine: requests are
	// serialized onto each node's control channel between gossip steps.
	LiveRunner = live.Runner
	// LiveRunnerConfig parameterizes NewLiveRunner (cycles, transports,
	// churn, runtime opinions, per-node feed retention).
	LiveRunnerConfig = live.Config
	// Network is a live transport (NewChannelNet for in-memory emulation,
	// live.NewTCPNet for loopback sockets).
	Network = live.Network
)

// NewLiveRunner builds a live fleet over the workload and transport.
func NewLiveRunner(cfg LiveRunnerConfig, ds *Dataset, network Network) *LiveRunner {
	return live.NewRunner(cfg, ds, network)
}

// NewChannelNet builds the in-memory lossy transport (ModelNet-style).
func NewChannelNet(seed int64, lossRate float64, latency time.Duration) Network {
	return live.NewChannelNet(seed, lossRate, latency)
}

// LiveConfig parameterizes a concurrent goroutine-per-node run.
type LiveConfig struct {
	// Node holds the per-node protocol parameters.
	Node Config
	// Seed drives workload scheduling and per-node randomness.
	Seed int64
	// Cycles and CycleLength define the run duration in real time.
	Cycles      int
	CycleLength time.Duration
	// LossRate and Latency configure the in-memory lossy network.
	LossRate float64
	Latency  time.Duration
	// UseTCP runs over real TCP loopback sockets with the congestion model
	// instead of in-memory channels.
	UseTCP bool
	// Churn schedules membership events for the live fleet, applied by the
	// runtime's membership controller at cycle-tick boundaries: joins spawn
	// fresh node goroutines that cold-start from a live host, crashes tear
	// the node's transport endpoints down abruptly, graceful leaves flush
	// pending batches first, and rejoins re-register and re-seed views from
	// an online sample. Joining ids beyond the dataset population like
	// nothing under the dataset's opinions; set Node.DescriptorTTL so the
	// surviving views evict departed members' descriptors.
	Churn ChurnSchedule
	// DepartureNotices and RefillWatermark enable the churn protocol's
	// departure notices and anti-entropy view refill for the live fleet,
	// with the same semantics as SimulationConfig.
	DepartureNotices bool
	RefillWatermark  float64
}

// RunLive executes a live (concurrent, wall-clock) run of the workload and
// returns its metrics. Unlike Simulation, live runs are not deterministic.
func RunLive(ds *Dataset, cfg LiveConfig) *Collector {
	var network live.Network
	if cfg.UseTCP {
		network = live.NewTCPNet(live.TCPNetConfig{SlowEvery: 4})
	} else {
		network = live.NewChannelNet(cfg.Seed, cfg.LossRate, cfg.Latency)
	}
	r := live.NewRunner(live.Config{
		Seed:             cfg.Seed,
		Cycles:           cfg.Cycles,
		CycleLength:      cfg.CycleLength,
		NodeConfig:       cfg.Node,
		Churn:            cfg.Churn,
		DepartureNotices: cfg.DepartureNotices,
		RefillWatermark:  cfg.RefillWatermark,
	}, ds, network)
	r.Run()
	return r.Collector()
}

// ── Serving: ingestion sources and the HTTP API ─────────────────────────
//
// The deployable shape of the system (cmd/whatsup-serve): Sources feed a
// Gateway, the Gateway publishes into a LiveRunner's gossip mesh, and the
// APIServer exposes per-node feeds, feedback and fleet stats over JSON HTTP.

type (
	// Source is one news provider (NewFeedSource for RSS/Atom over HTTP,
	// NewFileSource for fixture files, NewSource for "kind:arg" specs).
	Source = source.Source
	// Catalog records every item a gateway has published, for /v1/items.
	Catalog = source.Catalog
	// CatalogEntry is one ingested item with its provenance.
	CatalogEntry = source.CatalogEntry
	// Gateway polls Sources and publishes deduplicated items into the mesh.
	Gateway = source.Gateway
	// GatewayConfig parameterizes NewGateway.
	GatewayConfig = source.GatewayConfig
	// APIServer is the JSON HTTP handler over a running fleet.
	APIServer = api.Server

	// FeedEntry is one ranked feed recommendation (GET /v1/nodes/{id}/feed).
	FeedEntry = live.FeedEntry
	// NodeSnapshot is one node's point-in-time state (GET /v1/nodes/{id}).
	NodeSnapshot = live.NodeSnapshot
	// FleetStats is the fleet-wide metrics snapshot (GET /v1/stats).
	FleetStats = live.FleetStats
	// Member is one fleet member with its lifecycle state.
	Member = live.Member
)

// Sentinel errors of the live serving surface.
var (
	// ErrUnknownNode reports an id outside the fleet.
	ErrUnknownNode = live.ErrUnknownNode
	// ErrNodeOffline reports a node currently crashed or departed.
	ErrNodeOffline = live.ErrNodeOffline
	// ErrNotRunning reports an operation that needs the fleet clock live.
	ErrNotRunning = live.ErrNotRunning
)

// NewSource builds a source from a "kind:argument" spec ("rss:URL" or
// "file:PATH").
func NewSource(spec string) (Source, error) { return source.New(spec) }

// NewFeedSource builds an RSS/Atom source polling the given URL.
func NewFeedSource(url string) Source { return source.NewFeed(url) }

// NewFileSource builds a fixture source reading an RSS/Atom file from disk.
func NewFileSource(path string) Source { return source.NewFile(path) }

// NewGateway builds an ingestion gateway publishing through the given fleet
// node of the runner.
func NewGateway(cfg GatewayConfig, fleet *LiveRunner) *Gateway {
	return source.NewGateway(cfg, fleet)
}

// NewAPIServer builds the JSON HTTP handler over a running fleet. The
// catalog resolves /v1/items/{id}; nil serves the fleet routes only.
func NewAPIServer(fleet *LiveRunner, catalog *Catalog) *APIServer {
	if catalog == nil {
		return api.NewServer(fleet, nil)
	}
	return api.NewServer(fleet, catalog)
}
