module whatsup

go 1.21
