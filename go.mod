module whatsup

go 1.22.0

require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
