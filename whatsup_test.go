package whatsup

import (
	"testing"
	"time"
)

func TestSimulationEndToEnd(t *testing.T) {
	ds := SurveyDataset(1, 0.08)
	s := NewSimulation(ds, SimulationConfig{Node: Config{FLike: 5}, Seed: 1})
	s.Run()
	r := s.Results()
	if r.F1 <= 0 || r.Messages == 0 {
		t.Fatalf("empty results: %+v", r)
	}
	if r.Precision <= 0 || r.Recall <= 0 {
		t.Fatalf("zero quality: %+v", r)
	}
}

func TestSimulationDeterminism(t *testing.T) {
	ds := SurveyDataset(2, 0.08)
	run := func() Results {
		s := NewSimulation(ds, SimulationConfig{Node: Config{FLike: 5}, Seed: 9})
		s.Run()
		return s.Results()
	}
	if run() != run() {
		t.Fatal("simulations with the same seed must be identical")
	}
}

func TestSimulationStepAndNodeAccess(t *testing.T) {
	ds := SurveyDataset(3, 0.08)
	deliveries := 0
	s := NewSimulation(ds, SimulationConfig{
		Node: Config{FLike: 5}, Seed: 1,
		OnDelivery: func(Delivery, int64) { deliveries++ },
	})
	for i := 0; i < 10; i++ {
		s.Step()
	}
	if s.Node(0) == nil {
		t.Fatal("node 0 must be accessible")
	}
	if s.Node(NodeID(ds.Users+5)) != nil {
		t.Fatal("unknown node must be nil")
	}
	if deliveries == 0 {
		t.Fatal("OnDelivery must fire")
	}
}

func TestDatasetConstructors(t *testing.T) {
	if ds := SyntheticDataset(1, 0.03); ds.Users == 0 {
		t.Fatal("synthetic empty")
	}
	if ds := DiggDataset(1, 0.05); ds.Social == nil {
		t.Fatal("digg must carry a social graph")
	}
	if ds := SurveyDataset(1, 0.05); len(ds.Items) == 0 {
		t.Fatal("survey empty")
	}
}

func TestNewItemAndNode(t *testing.T) {
	it := NewItem("headline", "desc", "http://x", 3, 7)
	if it.ID == 0 || it.Source != 7 {
		t.Fatalf("item wrong: %+v", it)
	}
	n := NewNode(1, Config{}, OpinionFunc(func(NodeID, ItemID) bool { return true }), 42)
	if n.ID() != 1 {
		t.Fatal("node id")
	}
	if n.Config().FLike != 10 {
		t.Fatal("defaults must apply")
	}
}

func TestRunLiveChannels(t *testing.T) {
	// Wall-clock-bound (every message round-trips the wire codec): allow a
	// couple of attempts on loaded machines, like TestTCPNetDelivers.
	for attempt := 0; attempt < 3; attempt++ {
		ds := SurveyDataset(4+int64(attempt), 0.05)
		col := RunLive(ds, LiveConfig{
			Node:        Config{FLike: 4, ProfileWindow: 25},
			Seed:        1,
			Cycles:      25,
			CycleLength: 4 * time.Millisecond,
		})
		if col.Recall() > 0 {
			return
		}
	}
	t.Fatal("live run must deliver")
}

func TestRunLiveChurnSchedule(t *testing.T) {
	// The façade threads a churn schedule into the live runtime's membership
	// controller: a crash+rejoin and a graceful leave over the channel
	// transport must complete and still deliver traffic.
	ds := SurveyDataset(6, 0.05)
	var schedule ChurnSchedule
	schedule.Add(4, ChurnCrash, 0)
	schedule.Add(10, ChurnRejoin, 0)
	schedule.Add(7, ChurnLeave, 1)
	col := RunLive(ds, LiveConfig{
		Node:        Config{FLike: 4, ProfileWindow: 25, DescriptorTTL: 8},
		Seed:        1,
		Cycles:      25,
		CycleLength: 4 * time.Millisecond,
		Churn:       schedule,
	})
	if col.TotalMessages() == 0 {
		t.Fatal("churning live run produced no traffic")
	}
}

func TestMetricsExposed(t *testing.T) {
	ds := SurveyDataset(5, 0.05)
	s := NewSimulation(ds, SimulationConfig{Node: Config{FLike: 4}, Seed: 2})
	s.Run()
	if s.Metrics().TotalMessages() == 0 {
		t.Fatal("collector must be populated")
	}
}

func TestSimulationChurnSchedule(t *testing.T) {
	ds := SurveyDataset(3, 0.08)
	schedule := FlashCrowd(5, NodeID(ds.Users), 6, 3)
	schedule.Add(8, ChurnCrash, 0)
	schedule.Add(12, ChurnRejoin, 0)
	schedule.Add(9, ChurnLeave, 1)
	s := NewSimulation(ds, SimulationConfig{
		Node:  Config{FLike: 5, DescriptorTTL: 10},
		Seed:  4,
		Churn: schedule,
	})
	s.Run()
	if st, ok := s.MemberState(NodeID(ds.Users)); !ok || st != Online {
		t.Fatalf("flash-crowd joiner state = %v, %v", st, ok)
	}
	if st, _ := s.MemberState(0); st != Online {
		t.Fatalf("rejoined node state = %v", st)
	}
	if st, _ := s.MemberState(1); st != Departed {
		t.Fatalf("departed node state = %v", st)
	}
	if joiner := s.Node(NodeID(ds.Users)); joiner == nil || joiner.WUP().View().Len() == 0 {
		t.Fatal("joiner must exist with bootstrapped views")
	}
	if s.Results().F1 <= 0 {
		t.Fatal("churning run produced no quality signal")
	}
}
